// Backend conformance suite: one shared table of contract properties run
// against every engine implementation. Anything a serving layer relies on —
// empty-batch behavior, determinism, result ordering, k handling through
// the server, MaxBatch clamping, metrics mergeability — is asserted here
// for the IVF-PQ and graph backends alike, so a new backend that passes
// this table is known to drop into serve/cluster unmodified.

package engine_test

import (
	"context"
	"reflect"
	"testing"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/engine"
	"drimann/internal/graph"
	"drimann/internal/serve"
	"drimann/internal/testutil"
	"drimann/internal/topk"
)

// conformanceFixture builds one corpus and both backends over it.
func conformanceBackends(t *testing.T) (map[string]engine.Engine, *dataset.Synth) {
	t.Helper()
	spec := testutil.FixtureSpec{
		Name: "conformance", N: 3000, D: 24, Queries: 32,
		NumClusters: 24, Seed: 17, Noise: 10,
		NList: 32, M: 8, CB: 64, BuildSeed: 5,
	}
	ix, s := testutil.Fixture(t, spec)

	copts := core.DefaultOptions()
	copts.NumDPUs = 16
	copts.K = 10
	copts.NProbe = 12
	copts.BatchSize = 16
	ivfEng, err := core.New(ix, dataset.U8Set{}, copts)
	if err != nil {
		t.Fatal(err)
	}

	gopts := graph.DefaultOptions()
	gopts.NumDPUs = 16
	gopts.K = 10
	gopts.BatchSize = 16
	graphEng, err := graph.New(s.Base, gopts)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]engine.Engine{"ivf": ivfEng, "graph": graphEng}, s
}

func TestBackendConformance(t *testing.T) {
	backends, s := conformanceBackends(t)
	for name, eng := range backends {
		t.Run(name, func(t *testing.T) {
			testConformance(t, eng, s)
		})
	}
}

func testConformance(t *testing.T, eng engine.Engine, s *dataset.Synth) {
	if eng.K() <= 0 || eng.Dim() != s.Base.D || eng.MaxBatch() <= 0 {
		t.Fatalf("degenerate contract surface: K=%d Dim=%d MaxBatch=%d",
			eng.K(), eng.Dim(), eng.MaxBatch())
	}

	t.Run("EmptyBatch", func(t *testing.T) {
		res, err := eng.SearchBatch(dataset.U8Set{D: eng.Dim()})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IDs) != 0 || len(res.Items) != 0 {
			t.Fatalf("empty batch returned %d/%d rows", len(res.IDs), len(res.Items))
		}
		if res.Metrics.Queries != 0 || res.Metrics.SimSeconds != 0 {
			t.Fatalf("empty batch charged time: %+v", res.Metrics)
		}
	})

	var direct *engine.Result
	t.Run("DeterminismAcrossRuns", func(t *testing.T) {
		r1, err := eng.SearchBatch(s.Queries)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := eng.SearchBatch(s.Queries)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.IDs, r2.IDs) || !reflect.DeepEqual(r1.Items, r2.Items) {
			t.Fatal("results differ across runs")
		}
		if r1.Metrics.SimSeconds != r2.Metrics.SimSeconds {
			t.Fatalf("simulated time differs across runs: %g vs %g",
				r1.Metrics.SimSeconds, r2.Metrics.SimSeconds)
		}
		direct = r1
	})
	if direct == nil {
		t.Fatal("determinism subtest did not run")
	}

	t.Run("ResultShape", func(t *testing.T) {
		for qi := range direct.IDs {
			ids, items := direct.IDs[qi], direct.Items[qi]
			if len(ids) == 0 || len(ids) > eng.K() {
				t.Fatalf("query %d: %d neighbors, want 1..%d", qi, len(ids), eng.K())
			}
			if len(ids) != len(items) {
				t.Fatalf("query %d: IDs/Items length mismatch", qi)
			}
			for j := range items {
				if items[j].ID != ids[j] {
					t.Fatalf("query %d: IDs[%d] != Items[%d].ID", qi, j, j)
				}
				if j > 0 && !topk.Less(items[j-1], items[j]) {
					t.Fatalf("query %d: results not strictly ascending (dist, id)", qi)
				}
			}
		}
	})

	t.Run("MixedKThroughServe", func(t *testing.T) {
		srv, err := serve.New(eng, serve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		for _, k := range []int{1, eng.K() / 2, eng.K()} {
			for qi := 0; qi < s.Queries.N; qi++ {
				resp, err := srv.Search(context.Background(), s.Queries.Vec(qi), k)
				if err != nil {
					t.Fatal(err)
				}
				want := direct.IDs[qi]
				if len(want) > k {
					want = want[:k]
				}
				if !reflect.DeepEqual(resp.IDs, want) {
					t.Fatalf("k=%d query %d: serve IDs %v != direct prefix %v",
						k, qi, resp.IDs, want)
				}
			}
		}
	})

	t.Run("MaxBatchClamp", func(t *testing.T) {
		srv, err := serve.New(eng, serve.Options{MaxBatch: eng.MaxBatch() * 10})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		if got := srv.Options().MaxBatch; got != eng.MaxBatch() {
			t.Fatalf("server MaxBatch %d not clamped to engine MaxBatch %d",
				got, eng.MaxBatch())
		}
	})

	t.Run("MetricsMergeSanity", func(t *testing.T) {
		half := dataset.U8Set{N: s.Queries.N / 2, D: s.Queries.D,
			Data: s.Queries.Data[:(s.Queries.N/2)*s.Queries.D]}
		r1, err := eng.SearchBatch(half)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := eng.SearchBatch(half)
		if err != nil {
			t.Fatal(err)
		}
		m := r1.Metrics
		m.Merge(&r2.Metrics)
		if m.Queries != 2*half.N {
			t.Fatalf("merged Queries = %d, want %d", m.Queries, 2*half.N)
		}
		wantSim := r1.Metrics.SimSeconds + r2.Metrics.SimSeconds
		if m.SimSeconds != wantSim {
			t.Fatalf("merged SimSeconds = %g, want %g", m.SimSeconds, wantSim)
		}
		if m.Launches != r1.Metrics.Launches+r2.Metrics.Launches {
			t.Fatal("merged Launches did not sum")
		}
		if wantQPS := float64(m.Queries) / m.SimSeconds; m.QPS != wantQPS {
			t.Fatalf("merged QPS = %g, want recomputed %g", m.QPS, wantQPS)
		}
	})
}
