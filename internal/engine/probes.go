package engine

import "fmt"

// ProbeSet holds pre-resolved per-query probe lists in the flat CSR layout:
// query qi's probed cluster IDs are Clusters[Offsets[qi]:Offsets[qi+1]], in
// the ascending-distance order the CL stage produces (the order matters —
// the scheduler consumes requests in probe order, so preserving it keeps
// results and metrics bit-identical to an engine running its own CL).
type ProbeSet struct {
	// Offsets has one entry per query plus a final sentinel
	// (len = queries + 1); Offsets[0] is 0 and the sequence is monotone.
	Offsets []int32
	// Clusters concatenates every query's probed cluster IDs.
	Clusters []int32
}

// Of returns query qi's probe list (a view, not a copy).
func (p ProbeSet) Of(qi int) []int32 {
	return p.Clusters[p.Offsets[qi]:p.Offsets[qi+1]]
}

// Validate checks the CSR invariants against a query count and the index's
// cluster-ID domain.
func (p ProbeSet) Validate(queries, nlist int) error {
	if len(p.Offsets) != queries+1 {
		return fmt.Errorf("engine: probe set has %d offsets for %d queries (want %d)",
			len(p.Offsets), queries, queries+1)
	}
	if queries >= 0 && len(p.Offsets) > 0 {
		if p.Offsets[0] != 0 {
			return fmt.Errorf("engine: probe set offsets start at %d, want 0", p.Offsets[0])
		}
		if int(p.Offsets[queries]) != len(p.Clusters) {
			return fmt.Errorf("engine: probe set offsets end at %d, want %d",
				p.Offsets[queries], len(p.Clusters))
		}
	}
	for i := 1; i < len(p.Offsets); i++ {
		if p.Offsets[i] < p.Offsets[i-1] {
			return fmt.Errorf("engine: probe set offsets not monotone at query %d", i-1)
		}
	}
	for _, c := range p.Clusters {
		if c < 0 || int(c) >= nlist {
			return fmt.Errorf("engine: probe cluster %d outside [0, %d)", c, nlist)
		}
	}
	return nil
}
