package engine

import "drimann/internal/upmem"

// Metrics reports the simulated cost of a SearchBatch call. Every backend
// fills the universal fields (Queries, SimSeconds, QPS, the host/PIM/xfer
// split, launches, batches, imbalance, PointsScanned); the remaining
// counters are backend-specific and stay zero where they don't apply (the
// LUT and SQT16 groups are IVF-PQ's, for example). Keeping one metrics
// type across backends is what makes head-to-head accounting possible: the
// serving and cluster layers merge them without knowing which engine ran.
type Metrics struct {
	Queries     int
	SimSeconds  float64 // end-to-end: sum over batches of max(host, PIM+xfer)
	QPS         float64
	HostSeconds float64 // host-side work (overlapped with PIM)
	PIMSeconds  float64 // critical-path DPU time summed over launches
	XferSeconds float64 // host<->PIM transfers + launch overhead

	PhaseSeconds [upmem.NumPhases]float64 // per-phase critical path

	// Aggregate per-phase counters summed over every DPU and launch: raw
	// instruction cycles (pre pipeline scaling), DMA transfers issued
	// (including coalesced random accesses) and bytes moved. They make the
	// accounting auditable at full precision — the batched cost-tally path
	// and the per-op reference accountant must agree on every element.
	PhaseComputeCycles [upmem.NumPhases]uint64
	PhaseDMACount      [upmem.NumPhases]uint64
	PhaseDMABytes      [upmem.NumPhases]uint64

	Launches int
	Batches  int

	ImbalanceSum float64 // summed per-launch max/mean (divide by Launches)
	Postponed    int     // tasks deferred by overheat postponement

	LockAcquired  uint64
	LockSkipped   uint64
	LUTBuilds     uint64
	LUTReuses     uint64
	PointsScanned uint64

	// SQT16Hot/SQT16Cold are the tiered squaring-table lookups of this call
	// (all DPUs), split by tier; zero when the 16-bit mode is off.
	SQT16Hot  uint64
	SQT16Cold uint64
}

// SQT16HitRate returns the fraction of this call's tiered-table lookups
// served by the WRAM-resident hot window (1 when the mode is off).
func (m *Metrics) SQT16HitRate() float64 {
	if m.SQT16Hot+m.SQT16Cold == 0 {
		return 1
	}
	return float64(m.SQT16Hot) / float64(m.SQT16Hot+m.SQT16Cold)
}

// AvgImbalance returns the mean per-launch max/mean DPU load ratio.
func (m *Metrics) AvgImbalance() float64 {
	if m.Launches == 0 {
		return 1
	}
	return m.ImbalanceSum / float64(m.Launches)
}

// PhaseShare returns each phase's fraction of total PIM time (Figure 9).
func (m *Metrics) PhaseShare() [upmem.NumPhases]float64 {
	var out [upmem.NumPhases]float64
	var total float64
	for _, s := range m.PhaseSeconds {
		total += s
	}
	if total == 0 {
		return out
	}
	for p, s := range m.PhaseSeconds {
		out[p] = s / total
	}
	return out
}

// Merge accumulates o into m: query counts, durations and every counter
// sum; QPS is recomputed from the merged totals. The serving layer uses it
// to aggregate per-launch SearchBatch metrics into a lifetime view whose
// derived quantities (AvgImbalance, SQT16HitRate, PhaseShare) keep working.
func (m *Metrics) Merge(o *Metrics) {
	m.Queries += o.Queries
	m.SimSeconds += o.SimSeconds
	m.HostSeconds += o.HostSeconds
	m.PIMSeconds += o.PIMSeconds
	m.XferSeconds += o.XferSeconds
	for p := range m.PhaseSeconds {
		m.PhaseSeconds[p] += o.PhaseSeconds[p]
		m.PhaseComputeCycles[p] += o.PhaseComputeCycles[p]
		m.PhaseDMACount[p] += o.PhaseDMACount[p]
		m.PhaseDMABytes[p] += o.PhaseDMABytes[p]
	}
	m.Launches += o.Launches
	m.Batches += o.Batches
	m.ImbalanceSum += o.ImbalanceSum
	m.Postponed += o.Postponed
	m.LockAcquired += o.LockAcquired
	m.LockSkipped += o.LockSkipped
	m.LUTBuilds += o.LUTBuilds
	m.LUTReuses += o.LUTReuses
	m.PointsScanned += o.PointsScanned
	m.SQT16Hot += o.SQT16Hot
	m.SQT16Cold += o.SQT16Cold
	if m.SimSeconds > 0 {
		m.QPS = float64(m.Queries) / m.SimSeconds
	}
}

// MergeParallel accumulates o into m as a concurrently executing peer — the
// cross-shard view of the cluster layer, where S engines process the same
// query batch at the same time. Counters (launches, cycles, DMA, lock and
// scan totals) sum across shards, but wall-like durations take the
// elementwise max: the fleet finishes when its slowest shard does, so
// SimSeconds, HostSeconds, PIMSeconds, XferSeconds and the per-phase
// critical paths are max-over-shards, not sums. Queries also takes the max
// (every shard sees the full batch; the fleet still answered it once). QPS
// is recomputed from the merged totals. Compare Merge, the sequential
// accumulator the serving layer uses across launches of one engine.
func (m *Metrics) MergeParallel(o *Metrics) {
	if o.Queries > m.Queries {
		m.Queries = o.Queries
	}
	m.SimSeconds = maxf(m.SimSeconds, o.SimSeconds)
	m.HostSeconds = maxf(m.HostSeconds, o.HostSeconds)
	m.PIMSeconds = maxf(m.PIMSeconds, o.PIMSeconds)
	m.XferSeconds = maxf(m.XferSeconds, o.XferSeconds)
	for p := range m.PhaseSeconds {
		m.PhaseSeconds[p] = maxf(m.PhaseSeconds[p], o.PhaseSeconds[p])
		m.PhaseComputeCycles[p] += o.PhaseComputeCycles[p]
		m.PhaseDMACount[p] += o.PhaseDMACount[p]
		m.PhaseDMABytes[p] += o.PhaseDMABytes[p]
	}
	m.Launches += o.Launches
	m.Batches += o.Batches
	m.ImbalanceSum += o.ImbalanceSum
	m.Postponed += o.Postponed
	m.LockAcquired += o.LockAcquired
	m.LockSkipped += o.LockSkipped
	m.LUTBuilds += o.LUTBuilds
	m.LUTReuses += o.LUTReuses
	m.PointsScanned += o.PointsScanned
	m.SQT16Hot += o.SQT16Hot
	m.SQT16Cold += o.SQT16Cold
	if m.SimSeconds > 0 {
		m.QPS = float64(m.Queries) / m.SimSeconds
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
