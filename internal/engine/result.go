package engine

import "drimann/internal/topk"

// Result carries the neighbors plus the simulation metrics.
type Result struct {
	IDs     [][]int32
	Items   [][]topk.Item[uint32]
	Metrics Metrics
}

// QueryResult is one query's slice of a Result: the neighbor IDs in the
// deterministic (distance, id) order and the scored items behind them. The
// slices are views into the Result, not copies; they stay valid after the
// engine moves on to other batches.
type QueryResult struct {
	IDs   []int32
	Items []topk.Item[uint32]
}

// Query slices out query qi's results — the demultiplexing primitive of the
// online serving layer, which fans one SearchBatch across many callers.
func (r *Result) Query(qi int) QueryResult {
	return QueryResult{IDs: r.IDs[qi], Items: r.Items[qi]}
}
