// Package engine defines the backend contract the serving stack programs
// against. A backend is anything that can answer batched approximate
// nearest-neighbor queries over a fixed corpus while charging its work to
// the simulated UPMEM cost model — the IVF-PQ engine of internal/core (the
// paper's design) and the beam-search graph engine of internal/graph both
// implement it, and internal/serve, internal/cluster and the public facade
// run unmodified over either.
//
// The contract splits in two. Engine is the mandatory serving surface:
// batched search plus the three shape accessors the batcher needs to clamp
// and validate requests. Everything else a backend MAY support — CL-skipping
// probed search, live mutation, snapshotting, cheap replication, memory
// accounting — is an optional capability interface discovered by type
// assertion, so the stack degrades gracefully (a mutation against a backend
// without Mutable fails with a clear error instead of a compile-time weld to
// one concrete engine type).
package engine

import (
	"io"

	"drimann/internal/dataset"
)

// Engine is the mandatory backend contract: batched search over uint8
// vectors plus the shape accessors the serving layer uses to validate and
// clamp requests. Implementations must be deterministic — two SearchBatch
// calls with the same queries on the same engine state return bit-identical
// Results — and must populate Result.Metrics with the simulated cost of the
// call (Queries, SimSeconds, QPS at minimum).
//
// SearchBatch must accept any batch with 0 < N <= MaxBatch() and D == Dim(),
// and must return exactly min(K(), corpus size) neighbors per query in the
// deterministic ascending (distance, id) order. An empty batch (N == 0)
// returns an empty Result with zero metrics rather than an error.
type Engine interface {
	SearchBatch(queries dataset.U8Set) (*Result, error)
	// K is the neighbors returned per query.
	K() int
	// Dim is the vector dimensionality the engine serves.
	Dim() int
	// MaxBatch is the largest query batch one SearchBatch call accepts.
	MaxBatch() int
}

// ProbedSearcher is the capability behind selective scatter: a backend
// whose first stage is a cluster locate (IVF-style CL) can have that stage
// pre-resolved at a sharded front door and be handed the probe lists
// directly. Backends without a cluster structure (graph traversal) simply
// don't implement it and the cluster layer falls back to broadcast.
type ProbedSearcher interface {
	Engine
	// SearchBatchProbed runs the batch with cluster probes pre-resolved;
	// chargeCL controls whether the skipped locate stage's host cost is
	// still charged to the returned Metrics (see internal/core).
	SearchBatchProbed(queries dataset.U8Set, probes ProbeSet, chargeCL bool) (*Result, error)
	// NumClusters is the size of the probe-ID domain (the index's nlist).
	NumClusters() int
}

// Mutable is the live-mutation capability: point inserts and deletes
// applied at batch boundaries, plus compaction back to the packed layout.
// The contract matches internal/core: after Compact, results are
// bit-identical to a freshly built engine over the same logical corpus.
type Mutable interface {
	Insert(vecs dataset.U8Set, ids []int32) error
	Delete(ids []int32) error
	Compact() error
}

// Snapshotter is the durability hook: write a self-contained checkpoint
// image of the engine's logical corpus state to w. The serving layer calls
// it under quiescence (no in-flight batches).
type Snapshotter interface {
	Snapshot(w io.Writer) error
}

// Replicable is the cheap-replication capability: build another engine
// serving the same deployment bit-identically, sharing read-only state and
// owning private mutable state (simulated system, scratch), safe to run
// concurrently with the source.
type Replicable interface {
	NewReplica() (Engine, error)
}

// MemoryFootprint splits one engine's host-side memory into the read-only
// bytes shared across all replicas of a deployment and the private bytes
// every additional replica costs.
type MemoryFootprint struct {
	SharedBytes     int64
	PerReplicaBytes int64
}

// MemoryReporter is the memory-accounting capability the cluster layer
// uses for fleet-wide shared-vs-replica byte stats.
type MemoryReporter interface {
	MemoryFootprint() MemoryFootprint
}
