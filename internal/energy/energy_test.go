package energy

import "testing"

func TestWattsClampsUtilization(t *testing.T) {
	p := PowerModel{IdleWatts: 100, ActiveWatts: 200}
	if p.Watts(-1) != 100 {
		t.Fatalf("negative utilization should clamp to idle, got %v", p.Watts(-1))
	}
	if p.Watts(2) != 300 {
		t.Fatalf("over-unity utilization should clamp to full, got %v", p.Watts(2))
	}
	if p.Watts(0.5) != 200 {
		t.Fatalf("half utilization = %v, want 200", p.Watts(0.5))
	}
}

func TestEnergyIsPowerTimesTime(t *testing.T) {
	p := PowerModel{IdleWatts: 50, ActiveWatts: 50}
	if got := p.Energy(10, 1); got != 1000 {
		t.Fatalf("Energy = %v, want 1000 J", got)
	}
	if p.Energy(0, 1) != 0 {
		t.Fatal("zero time must cost zero energy")
	}
}

func TestUPMEMServerScalesWithDIMMs(t *testing.T) {
	small := UPMEMServer(8)
	big := UPMEMServer(32)
	if big.Watts(1) <= small.Watts(1) {
		t.Fatal("more DIMMs must draw more power")
	}
	// The paper notes the UPMEM server draws more power than the CPU server;
	// energy still wins through speed.
	if UPMEMServer(32).Watts(1) <= CPUServer().Watts(1) {
		t.Fatal("32-DIMM UPMEM server should out-draw the CPU server")
	}
}

func TestEnergyEfficiencyFollowsSpeedup(t *testing.T) {
	// Figure 10's logic: if DRIM-ANN is 2x faster, it wins on energy even at
	// ~1.6x the power.
	cpu := CPUServer()
	pim := UPMEMServer(32)
	cpuSeconds, pimSeconds := 10.0, 5.0
	cpuJ := cpu.Energy(cpuSeconds, 1)
	pimJ := pim.Energy(pimSeconds, 1)
	if pimJ >= cpuJ {
		t.Fatalf("2x speedup should yield an energy win: %v J vs %v J", pimJ, cpuJ)
	}
}

func TestModelsNamed(t *testing.T) {
	for _, m := range []PowerModel{CPUServer(), UPMEMServer(16), GPUServer()} {
		if m.Name == "" || m.Watts(1) <= 0 {
			t.Fatalf("bad model %+v", m)
		}
	}
}
