// Package energy models the power draw of the evaluated servers so that the
// paper's energy comparison (Figure 10) can be regenerated: the paper reads
// Intel RAPL counters; here energy is power x latency with public
// TDP-derived power figures (a substitution documented in DESIGN.md).
package energy

// PowerModel describes one server's draw under load.
type PowerModel struct {
	Name string
	// IdleWatts is the baseline platform draw (board, DRAM refresh, fans).
	IdleWatts float64
	// ActiveWatts is the additional draw at full load.
	ActiveWatts float64
}

// Watts returns total draw at the given utilization in [0,1].
func (p PowerModel) Watts(utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	return p.IdleWatts + p.ActiveWatts*utilization
}

// Energy returns joules for running `seconds` at the given utilization.
func (p PowerModel) Energy(seconds, utilization float64) float64 {
	return p.Watts(utilization) * seconds
}

// CPUServer models the baseline: dual-socket Xeon Gold 5218 (125 W TDP per
// socket) with 512 GB DDR4.
func CPUServer() PowerModel {
	return PowerModel{
		Name:        "CPU server (2x Xeon Gold 5218, 512GB DDR4)",
		IdleWatts:   110,
		ActiveWatts: 2*125 + 40, // sockets at TDP + DRAM active power
	}
}

// UPMEMServer models the PIM host (Xeon Silver 4216) plus the PIM DIMMs at
// the paper's ~13.92 W per DIMM. Fractional DIMM counts let scaled-down
// simulations price the slice of the server they model.
func UPMEMServer(dimms float64) PowerModel {
	return PowerModel{
		Name:        "UPMEM server (Xeon Silver 4216 + PIM DIMMs)",
		IdleWatts:   90 + 0.25*13.92*dimms, // DIMMs idle at ~25%
		ActiveWatts: 100 + 0.75*13.92*dimms,
	}
}

// GPUServer models the A100 PCIe baseline host.
func GPUServer() PowerModel {
	return PowerModel{
		Name:        "GPU server (A100 PCIe 300W + host)",
		IdleWatts:   130,
		ActiveWatts: 300 + 125,
	}
}
