package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSPD(rng *rand.Rand, n int) *Dense {
	// A = B*Bᵀ + n*I is symmetric positive definite.
	b := NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := Mul(b, b.T())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewDense(4, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	if d := MaxAbsDiff(Mul(a, Identity(4)), a); d > 1e-15 {
		t.Fatalf("A*I != A, diff %g", d)
	}
	if d := MaxAbsDiff(Mul(Identity(4), a), a); d > 1e-15 {
		t.Fatalf("I*A != A, diff %g", d)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if d := MaxAbsDiff(Mul(a, b), want); d != 0 {
		t.Fatalf("Mul wrong, diff %g", d)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := MulVec(a, []float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewDense(3, 5)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		return MaxAbsDiff(a.T().T(), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 20} {
		a := randSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("Cholesky(%d): %v", n, err)
		}
		if d := MaxAbsDiff(Mul(l, l.T()), a); d > 1e-9 {
			t.Fatalf("L*Lᵀ != A for n=%d, diff %g", n, d)
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("upper part of L nonzero at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
	if _, err := Cholesky(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSolveChol(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(rng, 8)
	want := make([]float64, 8)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := MulVec(a, want)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got := SolveChol(l, b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("SolveChol x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 1}})
	eig, v, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-3) > 1e-12 || math.Abs(eig[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v", eig)
	}
	// Columns are orthonormal.
	if d := MaxAbsDiff(Mul(v.T(), v), Identity(2)); d > 1e-12 {
		t.Fatalf("VᵀV != I, diff %g", d)
	}
}

func TestSymEigenReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{2, 4, 9} {
		a := randSPD(rng, n)
		eig, v, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild A = V diag(eig) Vᵀ.
		d := NewDense(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, eig[i])
		}
		rebuilt := Mul(Mul(v, d), v.T())
		if diff := MaxAbsDiff(rebuilt, a); diff > 1e-8 {
			t.Fatalf("eigen reconstruction failed for n=%d, diff %g", n, diff)
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if eig[i] > eig[i-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", eig)
			}
		}
	}
}

func TestSVDReconstructsAndOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 3, 6} {
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		u, s, v, err := SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDense(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, s[i])
		}
		rebuilt := Mul(Mul(u, d), v.T())
		if diff := MaxAbsDiff(rebuilt, a); diff > 1e-7 {
			t.Fatalf("SVD reconstruction failed n=%d diff=%g", n, diff)
		}
		if diff := MaxAbsDiff(Mul(u.T(), u), Identity(n)); diff > 1e-7 {
			t.Fatalf("U not orthogonal, diff %g", diff)
		}
		if diff := MaxAbsDiff(Mul(v.T(), v), Identity(n)); diff > 1e-7 {
			t.Fatalf("V not orthogonal, diff %g", diff)
		}
		for i, sv := range s {
			if sv < 0 {
				t.Fatalf("negative singular value s[%d]=%g", i, sv)
			}
		}
	}
}

func TestOrthoProcrustesIsOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(6)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		r, err := OrthoProcrustes(a)
		if err != nil {
			t.Fatal(err)
		}
		if diff := MaxAbsDiff(Mul(r.T(), r), Identity(n)); diff > 1e-7 {
			t.Fatalf("RᵀR != I, diff %g", diff)
		}
	}
}

func TestOrthoProcrustesRecoversRotation(t *testing.T) {
	// If A is already orthogonal, Procrustes must return it (up to fp noise).
	theta := 0.7
	rot := FromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	r, err := OrthoProcrustes(rot)
	if err != nil {
		t.Fatal(err)
	}
	if diff := MaxAbsDiff(r, rot); diff > 1e-8 {
		t.Fatalf("Procrustes of a rotation is not itself, diff %g", diff)
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged input")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestNewDensePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero shape")
		}
	}()
	NewDense(0, 3)
}
