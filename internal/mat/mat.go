// Package mat implements the small dense linear algebra needed elsewhere in
// the repository: matrix products for OPQ rotation training, Cholesky
// factorization for Gaussian-process surrogates, and a Jacobi eigensolver
// from which an SVD is derived. Everything is float64 and allocation-simple;
// matrices here are at most a few hundred rows (vector dimension or number of
// DSE samples), so clarity wins over blocking tricks.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed r x c matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	m := NewDense(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols {
			panic("mat: ragged rows")
		}
		copy(m.Data[i*m.Cols:], row)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns a*b.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns a*x for a vector x of length a.Cols.
func MulVec(a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("mat: MulVec shape mismatch")
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Cholesky computes the lower-triangular L with a = L*Lᵀ for a symmetric
// positive-definite matrix. It returns an error if the matrix is not
// (numerically) positive definite.
func Cholesky(a *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("mat: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("mat: matrix not positive definite at pivot %d (%g)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveChol solves a*x = b given the Cholesky factor L of a, via forward and
// back substitution.
func SolveChol(l *Dense, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("mat: SolveChol length mismatch")
	}
	// Forward: L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back: Lᵀ*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// SymEigen computes the eigendecomposition of a symmetric matrix using cyclic
// Jacobi rotations. It returns the eigenvalues (descending) and a matrix
// whose columns are the corresponding orthonormal eigenvectors.
func SymEigen(a *Dense) ([]float64, *Dense, error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("mat: SymEigen requires a square matrix")
	}
	n := a.Rows
	m := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}

	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = m.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue (selection sort on columns).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if eig[j] > eig[best] {
				best = j
			}
		}
		if best != i {
			eig[i], eig[best] = eig[best], eig[i]
			for r := 0; r < n; r++ {
				vi, vb := v.At(r, i), v.At(r, best)
				v.Set(r, i, vb)
				v.Set(r, best, vi)
			}
		}
	}
	return eig, v, nil
}

// rotate applies a Jacobi rotation on rows/cols (p, q) of m, accumulating the
// rotation into v.
func rotate(m, v *Dense, p, q int, c, s float64) {
	n := m.Rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m.At(p, j), m.At(q, j)
		m.Set(p, j, c*mpj-s*mqj)
		m.Set(q, j, s*mpj+c*mqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// SVD computes a thin singular value decomposition a = U * diag(s) * Vᵀ for a
// square matrix, via the symmetric eigendecompositions of aᵀa. Adequate for
// the well-conditioned covariance-like matrices OPQ produces.
func SVD(a *Dense) (u *Dense, s []float64, v *Dense, err error) {
	if a.Rows != a.Cols {
		return nil, nil, nil, errors.New("mat: SVD implemented for square matrices only")
	}
	n := a.Rows
	ata := Mul(a.T(), a)
	eig, vv, err := SymEigen(ata)
	if err != nil {
		return nil, nil, nil, err
	}
	s = make([]float64, n)
	for i, e := range eig {
		if e < 0 {
			e = 0
		}
		s[i] = math.Sqrt(e)
	}
	// U = A * V * diag(1/s); for tiny singular values fall back to a unit
	// column orthogonal to the others (Gram-Schmidt against existing ones).
	av := Mul(a, vv)
	u = NewDense(n, n)
	for j := 0; j < n; j++ {
		if s[j] > 1e-12 {
			inv := 1 / s[j]
			for i := 0; i < n; i++ {
				u.Set(i, j, av.At(i, j)*inv)
			}
			continue
		}
		col := make([]float64, n)
		col[j%n] = 1
		for k := 0; k < j; k++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += col[i] * u.At(i, k)
			}
			for i := 0; i < n; i++ {
				col[i] -= dot * u.At(i, k)
			}
		}
		norm := 0.0
		for _, x := range col {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			norm = 1
		}
		for i := 0; i < n; i++ {
			u.Set(i, j, col[i]/norm)
		}
	}
	return u, s, vv, nil
}

// OrthoProcrustes returns the orthogonal matrix R = U*Vᵀ closest (in
// Frobenius norm) to the given square matrix, the Procrustes step used by OPQ
// training.
func OrthoProcrustes(a *Dense) (*Dense, error) {
	u, _, v, err := SVD(a)
	if err != nil {
		return nil, err
	}
	return Mul(u, v.T()), nil
}

// MaxAbsDiff returns the largest absolute element-wise difference between two
// equal-shape matrices; a convenience for tests.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: MaxAbsDiff shape mismatch")
	}
	var max float64
	for i, x := range a.Data {
		d := math.Abs(x - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}
