// Package layout implements DRIM-ANN's data layout optimization (paper
// §3.2): the three-phase strategy that fights load imbalance on thousands of
// DPUs with no inter-DPU communication fabric.
//
//  1. Cluster partition — clusters larger than a threshold th1 are split
//     into equal-capacity slices so one hot cluster can spread over several
//     DPUs. th1 is found by an iterative search with a dynamic learning
//     rate, trading the extra per-slice indexing overhead against balance,
//     under the constraint that slice metadata fits in WRAM.
//  2. Cluster duplication — hot clusters get extra copies (all slices of a
//     cluster are duplicated the same number of times), proportional to
//     heat and inversely proportional to slice count, until the configured
//     extra MRAM footprint is exhausted.
//  3. Cluster allocation — slice copies go to the coldest DPU that can hold
//     them (greedy), followed by exchange passes that co-locate slices of
//     the same cluster for RC/LC/TS data reuse while keeping the heat
//     balance within tolerance.
package layout

import (
	"fmt"
	"math"
	"sort"
)

// Config controls the optimizer.
type Config struct {
	NumDPUs       int
	BytesPerPoint int // PQ code bytes + id bytes per point

	// MRAMDataBudget is the per-DPU byte budget for primary slice data.
	MRAMDataBudget int
	// CopyFootprint is the extra per-DPU byte budget for duplicate copies
	// (the paper's Figure 14(b) x-axis). 0 disables duplication.
	CopyFootprint int

	// WRAMMetaBudget bounds per-DPU slice metadata (constrains th1).
	WRAMMetaBudget int
	// MetaBytesPerSlice is the metadata footprint of one slice; default 16.
	MetaBytesPerSlice int

	// HeatWeight w blends cluster size and profiled frequency into heat:
	// heat = w*sizeNorm + (1-w)*freqNorm. Default 0.5.
	HeatWeight float64

	// SplitThreshold forces th1 (Figure 14(a) x-axis); 0 = automatic search.
	SplitThreshold int

	// Phase toggles for the paper's ablations (Figure 13).
	EnableSplit   bool
	EnableDup     bool
	EnableBalance bool // false = naive round-robin allocation by cluster id

	// DMALatencyCycles and PointCycles parameterize the th1 objective:
	// per-slice fixed access overhead and per-point scan cost.
	DMALatencyCycles float64
	PointCycles      float64
}

func (c *Config) defaults() error {
	if c.NumDPUs <= 0 {
		return fmt.Errorf("layout: NumDPUs must be positive")
	}
	if c.BytesPerPoint <= 0 {
		return fmt.Errorf("layout: BytesPerPoint must be positive")
	}
	if c.MetaBytesPerSlice <= 0 {
		c.MetaBytesPerSlice = 16
	}
	if c.WRAMMetaBudget <= 0 {
		c.WRAMMetaBudget = 16 * 1024
	}
	if c.HeatWeight <= 0 || c.HeatWeight > 1 {
		c.HeatWeight = 0.5
	}
	if c.DMALatencyCycles <= 0 {
		c.DMALatencyCycles = 77
	}
	if c.PointCycles <= 0 {
		c.PointCycles = 16
	}
	if c.MRAMDataBudget <= 0 {
		c.MRAMDataBudget = 64 * 1024 * 1024
	}
	return nil
}

// Slice is one partition of a cluster. Start/Count index into the cluster's
// inverted list; DPUs lists the devices holding a copy (len >= 1 after
// allocation).
type Slice struct {
	ID      int
	Cluster int32
	Start   int
	Count   int
	Heat    float64 // per-copy heat share of this slice
	DPUs    []int
}

// Placement is the optimizer's output.
type Placement struct {
	NumDPUs int
	Th1     int
	Slices  []Slice
	// ByCluster maps cluster id -> indices into Slices.
	ByCluster [][]int
	// DPUHeat and DPUBytes are the post-allocation per-DPU loads.
	DPUHeat  []float64
	DPUBytes []int
	// ClusterHeat is the blended heat used for decisions (exported for the
	// scheduler and for tests).
	ClusterHeat []float64
	// Copies per cluster (>= 1).
	Copies []int
}

// Optimize runs partition, duplication, and allocation for clusters with the
// given sizes (points per cluster) and profiled access frequencies
// (normalized or raw; only relative values matter).
func Optimize(sizes []int, freq []float64, cfg Config) (*Placement, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	n := len(sizes)
	if n == 0 {
		return nil, fmt.Errorf("layout: no clusters")
	}
	if len(freq) != n {
		return nil, fmt.Errorf("layout: freq length %d != clusters %d", len(freq), n)
	}

	heat := blendHeat(sizes, freq, cfg.HeatWeight)

	// Phase 1: partition.
	th1 := cfg.SplitThreshold
	if !cfg.EnableSplit {
		th1 = math.MaxInt
	} else if th1 <= 0 {
		th1 = searchTh1(sizes, freq, cfg)
	}
	pl := &Placement{
		NumDPUs:     cfg.NumDPUs,
		Th1:         th1,
		ByCluster:   make([][]int, n),
		DPUHeat:     make([]float64, cfg.NumDPUs),
		DPUBytes:    make([]int, cfg.NumDPUs),
		ClusterHeat: heat,
		Copies:      make([]int, n),
	}
	for c, size := range sizes {
		nSlices := 1
		if size > th1 {
			nSlices = (size + th1 - 1) / th1
		}
		per := (size + nSlices - 1) / nSlices
		for s := 0; s < nSlices; s++ {
			start := s * per
			count := per
			if start+count > size {
				count = size - start
			}
			if count <= 0 {
				continue
			}
			id := len(pl.Slices)
			pl.Slices = append(pl.Slices, Slice{
				ID: id, Cluster: int32(c), Start: start, Count: count,
			})
			pl.ByCluster[c] = append(pl.ByCluster[c], id)
		}
	}

	// Phase 2: duplication.
	for c := range pl.Copies {
		pl.Copies[c] = 1
	}
	if cfg.EnableDup && cfg.CopyFootprint > 0 {
		duplicate(pl, sizes, heat, cfg)
	}

	// Per-copy heat share: cluster heat spread over its slices and copies.
	for i := range pl.Slices {
		s := &pl.Slices[i]
		c := s.Cluster
		share := heat[c] * float64(s.Count) / float64(sizes[c])
		s.Heat = share / float64(pl.Copies[c])
	}

	// Phase 3: allocation.
	if err := allocate(pl, cfg); err != nil {
		return nil, err
	}
	return pl, nil
}

// blendHeat normalizes sizes and frequencies to mean 1 and blends them.
func blendHeat(sizes []int, freq []float64, w float64) []float64 {
	n := len(sizes)
	var sizeSum float64
	var freqSum float64
	for i := 0; i < n; i++ {
		sizeSum += float64(sizes[i])
		freqSum += freq[i]
	}
	sizeMean := sizeSum / float64(n)
	freqMean := freqSum / float64(n)
	if sizeMean == 0 {
		sizeMean = 1
	}
	if freqMean == 0 {
		freqMean = 1
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = w*float64(sizes[i])/sizeMean + (1-w)*freq[i]/freqMean
	}
	return out
}

// th1Objective scores a candidate threshold: per-slice fixed access overhead
// (frequency-weighted DMA setup for slice metadata and partial buffers) plus
// an imbalance proxy — the cost of the largest single slice, which bounds
// how well any allocation can balance.
func th1Objective(sizes []int, freq []float64, th int, cfg Config) (cost float64, feasible bool) {
	totalSlices := 0
	var overhead float64
	maxSlice := 0
	for c, size := range sizes {
		ns := 1
		if size > th {
			ns = (size + th - 1) / th
		}
		totalSlices += ns
		overhead += freq[c] * float64(ns) * cfg.DMALatencyCycles
		per := (size + ns - 1) / ns
		if per > maxSlice {
			maxSlice = per
		}
	}
	// Metadata must fit WRAM: slices are spread across DPUs, but every DPU
	// keeps the global slice directory for scheduling, as in the paper.
	if totalSlices*cfg.MetaBytesPerSlice > cfg.WRAMMetaBudget {
		return 0, false
	}
	var freqMean float64
	for _, f := range freq {
		freqMean += f
	}
	freqMean /= float64(len(freq))
	imbalance := float64(maxSlice) * cfg.PointCycles * math.Max(freqMean, 1e-12)
	return overhead + imbalance, true
}

// searchTh1 implements the paper's iterative threshold search: start at the
// smallest cluster size and climb with a dynamic learning rate, keeping the
// best feasible candidate.
func searchTh1(sizes []int, freq []float64, cfg Config) int {
	minSize, maxSize := math.MaxInt, 0
	for _, s := range sizes {
		if s < minSize && s > 0 {
			minSize = s
		}
		if s > maxSize {
			maxSize = s
		}
	}
	if minSize == math.MaxInt {
		return 1
	}

	best := -1
	bestCost := math.Inf(1)
	th := float64(minSize)
	lr := 2.0
	for iter := 0; iter < 64 && th <= float64(maxSize)*2; iter++ {
		cand := int(math.Ceil(th))
		cost, feasible := th1Objective(sizes, freq, cand, cfg)
		if feasible && cost < bestCost {
			bestCost, best = cost, cand
			lr *= 1.25 // accelerate while improving
		} else {
			lr = 1 + (lr-1)/2 // decay on plateau
			if lr < 1.05 {
				break
			}
		}
		th *= lr
	}
	if best < 0 {
		// Nothing feasible under the metadata budget: fall back to unsplit.
		return maxSize
	}
	return best
}

// duplicate adds copies to clusters by priority heat/slices until the extra
// footprint budget is exhausted (paper: "as many duplicated cluster slices
// as PIM memory allows", hot clusters first).
func duplicate(pl *Placement, sizes []int, heat []float64, cfg Config) {
	budget := cfg.CopyFootprint * cfg.NumDPUs
	// Repeatedly grant one copy to the cluster with the highest current
	// priority heat/(slices x copies): copy counts converge to be
	// proportional to heat and inversely proportional to the slice count,
	// exactly the paper's th2[i] rule, bounded by the DPU count (copies must
	// land on distinct devices).
	for {
		best, bestPriority := -1, 0.0
		for c := range sizes {
			ns := len(pl.ByCluster[c])
			if ns == 0 || pl.Copies[c] >= cfg.NumDPUs {
				continue
			}
			if sizes[c]*cfg.BytesPerPoint > budget {
				continue
			}
			p := heat[c] / float64(ns) / float64(pl.Copies[c])
			if p > bestPriority {
				best, bestPriority = c, p
			}
		}
		if best < 0 {
			return
		}
		pl.Copies[best]++
		budget -= sizes[best] * cfg.BytesPerPoint
	}
}

// allocate assigns every slice copy to DPUs.
func allocate(pl *Placement, cfg Config) error {
	type copyRef struct {
		slice int
		heat  float64
		bytes int
	}
	var refs []copyRef
	for i := range pl.Slices {
		s := &pl.Slices[i]
		nCopies := pl.Copies[s.Cluster]
		bytes := s.Count * cfg.BytesPerPoint
		for k := 0; k < nCopies; k++ {
			refs = append(refs, copyRef{slice: i, heat: s.Heat, bytes: bytes})
		}
		s.DPUs = s.DPUs[:0]
	}

	if !cfg.EnableBalance {
		// Naive layout: whole clusters round-robin by id, copies to
		// subsequent DPUs. This is the paper's imbalanced baseline.
		for i := range pl.Slices {
			s := &pl.Slices[i]
			for k := 0; k < pl.Copies[s.Cluster]; k++ {
				d := (int(s.Cluster) + k) % cfg.NumDPUs
				s.DPUs = append(s.DPUs, d)
				pl.DPUHeat[d] += s.Heat
				pl.DPUBytes[d] += s.Count * cfg.BytesPerPoint
			}
		}
		return validateCapacity(pl, cfg)
	}

	// Greedy: hottest copies first, each to the coldest DPU that has room
	// and does not already hold a copy of the same slice.
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].heat != refs[j].heat {
			return refs[i].heat > refs[j].heat
		}
		return refs[i].slice < refs[j].slice
	})
	capacity := cfg.MRAMDataBudget + cfg.CopyFootprint
	for _, r := range refs {
		s := &pl.Slices[r.slice]
		bestD := -1
		for d := 0; d < cfg.NumDPUs; d++ {
			if pl.DPUBytes[d]+r.bytes > capacity {
				continue
			}
			if containsInt(s.DPUs, d) {
				continue
			}
			if bestD < 0 || pl.DPUHeat[d] < pl.DPUHeat[bestD] {
				bestD = d
			}
		}
		if bestD < 0 {
			if len(s.DPUs) > 0 {
				continue // a duplicate that no longer fits: drop the copy
			}
			return fmt.Errorf("layout: slice %d (%d bytes) fits on no DPU", s.ID, r.bytes)
		}
		s.DPUs = append(s.DPUs, bestD)
		pl.DPUHeat[bestD] += r.heat
		pl.DPUBytes[bestD] += r.bytes
	}
	// Recompute copies to reflect dropped duplicates.
	for c := range pl.Copies {
		minCopies := math.MaxInt
		for _, si := range pl.ByCluster[c] {
			if l := len(pl.Slices[si].DPUs); l < minCopies {
				minCopies = l
			}
		}
		if minCopies != math.MaxInt {
			pl.Copies[c] = minCopies
		}
	}

	exchangeForReuse(pl, cfg)
	return validateCapacity(pl, cfg)
}

// exchangeForReuse tries to co-locate the primary copies of same-cluster
// slices (for residual/LUT/top-k reuse) by swapping slice copies between
// DPUs when the swap keeps the heat balance within 2 %.
func exchangeForReuse(pl *Placement, cfg Config) {
	const tolerance = 1.02
	maxHeat := func() float64 {
		m := 0.0
		for _, h := range pl.DPUHeat {
			if h > m {
				m = h
			}
		}
		return m
	}
	limit := maxHeat() * tolerance

	for pass := 0; pass < 3; pass++ {
		moved := false
		for c := range pl.ByCluster {
			ids := pl.ByCluster[c]
			if len(ids) < 2 {
				continue
			}
			home := pl.Slices[ids[0]].DPUs
			if len(home) == 0 {
				continue
			}
			target := home[0]
			for _, si := range ids[1:] {
				s := &pl.Slices[si]
				if len(s.DPUs) == 0 || s.DPUs[0] == target || containsInt(s.DPUs, target) {
					continue
				}
				from := s.DPUs[0]
				bytes := s.Count * cfg.BytesPerPoint
				if pl.DPUBytes[target]+bytes > cfg.MRAMDataBudget+cfg.CopyFootprint {
					continue
				}
				if pl.DPUHeat[target]+s.Heat > limit {
					continue
				}
				s.DPUs[0] = target
				pl.DPUHeat[from] -= s.Heat
				pl.DPUBytes[from] -= bytes
				pl.DPUHeat[target] += s.Heat
				pl.DPUBytes[target] += bytes
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

func validateCapacity(pl *Placement, cfg Config) error {
	capacity := cfg.MRAMDataBudget + cfg.CopyFootprint
	for d, b := range pl.DPUBytes {
		if b > capacity && cfg.EnableBalance {
			return fmt.Errorf("layout: DPU %d over capacity: %d > %d", d, b, capacity)
		}
	}
	return nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: every cluster fully covered by its
// slices exactly once per copy, no slice duplicated on one DPU, at least one
// copy per slice. Intended for tests and engine assertions.
func (pl *Placement) Validate(sizes []int) error {
	for c, ids := range pl.ByCluster {
		covered := 0
		expectedCopies := -1
		for _, si := range ids {
			s := pl.Slices[si]
			if int(s.Cluster) != c {
				return fmt.Errorf("layout: slice %d in wrong cluster bucket", si)
			}
			covered += s.Count
			if len(s.DPUs) == 0 {
				return fmt.Errorf("layout: slice %d unallocated", si)
			}
			seen := map[int]bool{}
			for _, d := range s.DPUs {
				if seen[d] {
					return fmt.Errorf("layout: slice %d duplicated on DPU %d", si, d)
				}
				if d < 0 || d >= pl.NumDPUs {
					return fmt.Errorf("layout: slice %d on invalid DPU %d", si, d)
				}
				seen[d] = true
			}
			if expectedCopies == -1 {
				expectedCopies = len(s.DPUs)
			}
		}
		if covered != sizes[c] {
			return fmt.Errorf("layout: cluster %d covered %d of %d points", c, covered, sizes[c])
		}
	}
	return nil
}

// ReuseScore counts pairs of same-cluster slices whose primary copies share a
// DPU — the quantity the exchange pass maximizes.
func (pl *Placement) ReuseScore() int {
	score := 0
	for _, ids := range pl.ByCluster {
		byDPU := map[int]int{}
		for _, si := range ids {
			if len(pl.Slices[si].DPUs) > 0 {
				byDPU[pl.Slices[si].DPUs[0]]++
			}
		}
		for _, n := range byDPU {
			score += n * (n - 1) / 2
		}
	}
	return score
}

// HeatImbalance returns max/mean DPU heat (1 = perfect balance).
func (pl *Placement) HeatImbalance() float64 {
	var sum, max float64
	for _, h := range pl.DPUHeat {
		sum += h
		if h > max {
			max = h
		}
	}
	mean := sum / float64(len(pl.DPUHeat))
	if mean == 0 {
		return 1
	}
	return max / mean
}
