package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func baseConfig() Config {
	return Config{
		NumDPUs:        8,
		BytesPerPoint:  20,
		MRAMDataBudget: 1 << 20,
		CopyFootprint:  64 << 10,
		WRAMMetaBudget: 16 << 10,
		EnableSplit:    true,
		EnableDup:      true,
		EnableBalance:  true,
	}
}

// zipfSizes makes skewed cluster sizes and frequencies.
func zipfSizes(rng *rand.Rand, n, scale int) ([]int, []float64) {
	sizes := make([]int, n)
	freq := make([]float64, n)
	for i := range sizes {
		sizes[i] = scale/(i+1) + 1
		freq[i] = float64(scale) / float64(i+1) * (0.5 + rng.Float64())
	}
	return sizes, freq
}

func TestOptimizeValidatesInput(t *testing.T) {
	cfg := baseConfig()
	if _, err := Optimize(nil, nil, cfg); err == nil {
		t.Fatal("no clusters must fail")
	}
	if _, err := Optimize([]int{10}, []float64{1, 2}, cfg); err == nil {
		t.Fatal("freq length mismatch must fail")
	}
	bad := cfg
	bad.NumDPUs = 0
	if _, err := Optimize([]int{10}, []float64{1}, bad); err == nil {
		t.Fatal("NumDPUs=0 must fail")
	}
}

func TestPartitionCoversExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes, freq := zipfSizes(rng, 40, 5000)
	pl, err := Optimize(sizes, freq, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(sizes); err != nil {
		t.Fatal(err)
	}
	// Large clusters must be split: every slice obeys th1.
	for _, s := range pl.Slices {
		if s.Count > pl.Th1 {
			t.Fatalf("slice %d has %d points > th1=%d", s.ID, s.Count, pl.Th1)
		}
	}
}

func TestSplitDisabledKeepsClustersWhole(t *testing.T) {
	cfg := baseConfig()
	cfg.EnableSplit = false
	sizes := []int{100, 2000, 50}
	freq := []float64{1, 10, 1}
	pl, err := Optimize(sizes, freq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, ids := range pl.ByCluster {
		if len(ids) != 1 {
			t.Fatalf("cluster %d split into %d slices with splitting disabled", c, len(ids))
		}
	}
	if err := pl.Validate(sizes); err != nil {
		t.Fatal(err)
	}
}

func TestForcedSplitThreshold(t *testing.T) {
	cfg := baseConfig()
	cfg.SplitThreshold = 300
	sizes := []int{1000, 100}
	freq := []float64{5, 1}
	pl, err := Optimize(sizes, freq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Th1 != 300 {
		t.Fatalf("th1 = %d, want 300", pl.Th1)
	}
	if got := len(pl.ByCluster[0]); got != 4 {
		t.Fatalf("cluster of 1000 with th1=300 should make 4 slices, got %d", got)
	}
	if got := len(pl.ByCluster[1]); got != 1 {
		t.Fatalf("cluster of 100 should stay whole, got %d slices", got)
	}
}

func TestAutoTh1FeasibleUnderMetadataBudget(t *testing.T) {
	cfg := baseConfig()
	cfg.WRAMMetaBudget = 64 * cfg.MetaBytesPerSlice // tiny: at most 64 slices
	if cfg.MetaBytesPerSlice == 0 {
		cfg.WRAMMetaBudget = 64 * 16
	}
	rng := rand.New(rand.NewSource(2))
	sizes, freq := zipfSizes(rng, 30, 3000)
	pl, err := Optimize(sizes, freq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Slices)*16 > 64*16 {
		t.Fatalf("metadata budget violated: %d slices", len(pl.Slices))
	}
}

func TestDuplicationPrefersHotClusters(t *testing.T) {
	cfg := baseConfig()
	cfg.CopyFootprint = 100 * cfg.BytesPerPoint // room for ~100 points per DPU extra
	sizes := []int{100, 100, 100, 100}
	freq := []float64{100, 1, 1, 1} // cluster 0 is hot
	pl, err := Optimize(sizes, freq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Copies[0] <= pl.Copies[1] {
		t.Fatalf("hot cluster should get more copies: %v", pl.Copies)
	}
	if err := pl.Validate(sizes); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicationDisabled(t *testing.T) {
	cfg := baseConfig()
	cfg.EnableDup = false
	sizes := []int{100, 200}
	freq := []float64{10, 1}
	pl, err := Optimize(sizes, freq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, n := range pl.Copies {
		if n != 1 {
			t.Fatalf("cluster %d has %d copies with duplication disabled", c, n)
		}
	}
}

func TestDuplicationRespectsBudget(t *testing.T) {
	cfg := baseConfig()
	cfg.CopyFootprint = 10 * cfg.BytesPerPoint
	sizes := []int{1000, 1000} // each copy costs 1000 points — over budget
	freq := []float64{100, 100}
	pl, err := Optimize(sizes, freq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range pl.Copies {
		if n != 1 {
			t.Fatalf("budget too small for copies, got %v", pl.Copies)
		}
	}
}

func TestAllocationBalancesHeat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sizes, freq := zipfSizes(rng, 60, 4000)

	balanced := baseConfig()
	plB, err := Optimize(sizes, freq, balanced)
	if err != nil {
		t.Fatal(err)
	}
	naive := baseConfig()
	naive.EnableSplit = false
	naive.EnableDup = false
	naive.EnableBalance = false
	plN, err := Optimize(sizes, freq, naive)
	if err != nil {
		t.Fatal(err)
	}
	if plB.HeatImbalance() >= plN.HeatImbalance() {
		t.Fatalf("balanced imbalance %v should beat naive %v",
			plB.HeatImbalance(), plN.HeatImbalance())
	}
	if plB.HeatImbalance() > 1.8 {
		t.Fatalf("balanced layout too imbalanced: %v", plB.HeatImbalance())
	}
}

func TestCopiesLandOnDistinctDPUs(t *testing.T) {
	cfg := baseConfig()
	cfg.CopyFootprint = 1 << 20
	sizes := []int{50, 50, 50}
	freq := []float64{100, 1, 1}
	pl, err := Optimize(sizes, freq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pl.Slices {
		seen := map[int]bool{}
		for _, d := range s.DPUs {
			if seen[d] {
				t.Fatalf("slice %d has two copies on DPU %d", s.ID, d)
			}
			seen[d] = true
		}
	}
}

func TestAllocationFailsWhenDataCannotFit(t *testing.T) {
	cfg := baseConfig()
	cfg.MRAMDataBudget = 10 * cfg.BytesPerPoint
	cfg.CopyFootprint = 0
	cfg.EnableDup = false
	cfg.EnableSplit = false
	sizes := []int{1000}
	freq := []float64{1}
	if _, err := Optimize(sizes, freq, cfg); err == nil {
		t.Fatal("expected allocation failure for oversized slice")
	}
}

func TestExchangeImprovesReuseWithoutBreakingBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sizes, freq := zipfSizes(rng, 50, 6000)
	cfg := baseConfig()
	pl, err := Optimize(sizes, freq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(sizes); err != nil {
		t.Fatal(err)
	}
	// Balance must remain reasonable after exchange passes.
	if pl.HeatImbalance() > 2.0 {
		t.Fatalf("exchange wrecked balance: %v", pl.HeatImbalance())
	}
	if pl.ReuseScore() < 0 {
		t.Fatal("reuse score must be non-negative")
	}
}

func TestPlacementInvariantsProperty(t *testing.T) {
	f := func(rawSizes []uint16, seed int64) bool {
		if len(rawSizes) == 0 {
			return true
		}
		if len(rawSizes) > 40 {
			rawSizes = rawSizes[:40]
		}
		rng := rand.New(rand.NewSource(seed))
		sizes := make([]int, len(rawSizes))
		freq := make([]float64, len(rawSizes))
		for i, s := range rawSizes {
			sizes[i] = int(s)%2000 + 1
			freq[i] = rng.Float64() * 10
		}
		pl, err := Optimize(sizes, freq, baseConfig())
		if err != nil {
			return false
		}
		return pl.Validate(sizes) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHeatImbalanceOfEmptyHeatIsOne(t *testing.T) {
	pl := &Placement{NumDPUs: 4, DPUHeat: make([]float64, 4)}
	if pl.HeatImbalance() != 1 {
		t.Fatal("zero-heat imbalance should be 1")
	}
}

func TestSmallerSplitGranularityImprovesBalance(t *testing.T) {
	// Figure 14(a)'s mechanism: finer slices allow better balance (up to
	// overhead, which the engine charges separately).
	rng := rand.New(rand.NewSource(5))
	sizes, freq := zipfSizes(rng, 20, 8000)
	coarse := baseConfig()
	coarse.SplitThreshold = 1 << 20 // effectively no splitting
	fine := baseConfig()
	fine.SplitThreshold = 200
	plC, err := Optimize(sizes, freq, coarse)
	if err != nil {
		t.Fatal(err)
	}
	plF, err := Optimize(sizes, freq, fine)
	if err != nil {
		t.Fatal(err)
	}
	if plF.HeatImbalance() > plC.HeatImbalance()+1e-9 {
		t.Fatalf("finer split should not worsen balance: %v vs %v",
			plF.HeatImbalance(), plC.HeatImbalance())
	}
}
