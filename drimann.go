// Package drimann is a Go implementation of DRIM-ANN, the approximate
// nearest neighbor search engine for commodity DRAM processing-in-memory
// systems from "DRIM-ANN: An Approximate Nearest Neighbor Search Engine
// based on Commercial DRAM-PIMs" (SC '25).
//
// The library contains the full system described by the paper:
//
//   - an IVF-PQ index (with OPQ and DPQ variants) over uint8 vector corpora;
//   - a functional UPMEM DRAM-PIM simulator with the paper's cost model
//     (no hardware multiplier, WRAM/MRAM hierarchy, host-transfer limits);
//   - the DRIM-ANN engine: host-side cluster locating, DPU-side residual /
//     LUT / distance / top-k kernels with the multiplier-less SQT
//     conversion, WRAM buffering and lock pruning;
//   - the load-balance optimizer (cluster partition, duplication,
//     allocation) and the greedy runtime scheduler;
//   - the analytic performance model (Equations 1-13) and the Bayesian
//     design space exploration;
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// Execution model: SearchBatch runs as a three-stage pipeline mirroring the
// paper's host/PIM overlap. Stage 1 (cluster locating) processes a whole
// query batch across worker goroutines via the batched LocateBatch API;
// stage 2 schedules the resulting tasks onto DPUs; stage 3 simulates the
// DPU kernels in parallel and merges on the host. Unless
// EngineOptions.NoPipeline is set, stage 1 of batch i+1 overlaps stages 2-3
// of batch i, and all per-launch state (heaps, arenas, task buffers)
// is pooled, so steady-state searching allocates nothing.
//
// The DPU-phase simulation does O(points) arithmetic with near-zero
// constant factor: distances come from unrolled batch ADC kernels that
// evaluate an exact algebraic decomposition instead of materializing
// per-group LUTs, simulated costs accumulate in register-resident tallies
// flushed to the DPU counters once per launch block (the per-op reference
// accountant survives behind EngineOptions.PerOpAccounting), and the SQT16
// replay is memoized per unique (query, cluster) group — all per-DPU
// tables share one geometry, so one replay stands in for up to NumDPUs.
// Results and metrics (every counter, cycle and hit rate) are bit-identical
// across the pipelined, serial, batched-tally and per-op paths; only
// wall-clock speed differs. `drim-bench -bench` records the simulator's own
// wall-clock throughput into a BENCH_core.json trajectory file (with a
// GOMAXPROCS sweep) for cross-PR comparison; see cmd/drim-bench for the
// entry schema.
//
// # Online serving
//
// SearchBatch is an offline primitive: one caller, one pre-assembled query
// set. NewServer wraps an engine in the online serving layer
// (internal/serve): a concurrent, deadline-aware dynamic micro-batcher
// that accepts single queries from many goroutines (Server.Search),
// coalesces them into engine launches, and demultiplexes per-query results.
// A single batcher goroutine owns the engine and cycles idle -> collecting
// -> launching: the first query of a batch starts a ServerOptions.MaxWait
// countdown, further queries are absorbed until the batch reaches
// MaxBatch, the countdown expires, or a member's context deadline demands
// an early launch (the batcher tracks an EWMA of launch service times and
// launches once now + estimate reaches the earliest deadline). Cancellation
// is honored while a request is queued; once launched, its result is
// delivered regardless (delivery never blocks the batcher). The arrival
// queue is bounded — a full queue blocks Search, turning overload into
// caller-side backpressure rather than memory growth — and Close drains:
// admitted requests are still answered, later Search calls fail fast with
// ErrServerClosed. Per-query results are bit-identical to a single
// SearchBatch over the same queries regardless of how arrivals split into
// micro-batches (the equivalence suite in internal/serve pins this).
// `drim-bench -serve` runs a closed-loop load generator against the server
// and records p50/p95/p99 latency and achieved QPS into BENCH_core.json.
//
// Quick start:
//
//	corpus := drimann.SIFT(100000, 1000, 1) // synthetic SIFT-shaped data
//	ix, _ := drimann.Build(corpus.Base, drimann.IndexOptions{
//		NList: 1024, M: 16, CB: 256,
//	})
//	eng, _ := drimann.NewEngine(ix, corpus.Queries, drimann.DefaultEngineOptions())
//	res, _ := eng.SearchBatch(corpus.Queries)
//	fmt.Println(res.Metrics.QPS, res.IDs[0])
package drimann

import (
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/serve"
)

// Vectors is a flat corpus of N uint8 vectors of dimension D.
type Vectors = dataset.U8Set

// FloatVectors is a flat float32 corpus (quantize with Quantize before
// indexing).
type FloatVectors = dataset.F32Set

// Synth is a generated corpus with its query workload.
type Synth = dataset.Synth

// SynthConfig controls synthetic corpus generation.
type SynthConfig = dataset.SynthConfig

// Generate builds a synthetic clustered corpus (see SynthConfig).
func Generate(cfg SynthConfig) *Synth { return dataset.Generate(cfg) }

// SIFT generates a synthetic corpus with SIFT's shape (128-dim uint8).
func SIFT(n, queries int, seed int64) *Synth { return dataset.SIFT(n, queries, seed) }

// DEEP generates a synthetic corpus with DEEP's shape (96-dim).
func DEEP(n, queries int, seed int64) *Synth { return dataset.DEEP(n, queries, seed) }

// SPACEV generates a synthetic corpus with SPACEV's shape (100-dim).
func SPACEV(n, queries int, seed int64) *Synth { return dataset.SPACEV(n, queries, seed) }

// T2I generates a synthetic corpus with T2I's shape (200-dim).
func T2I(n, queries int, seed int64) *Synth { return dataset.T2I(n, queries, seed) }

// Index is a built IVF-PQ index.
type Index = ivf.Index

// IndexOptions configures index construction.
type IndexOptions struct {
	// NList is the number of coarse clusters (the paper's nlist).
	NList int
	// M is the number of PQ subvectors; must divide the dimension.
	M int
	// CB is the number of codebook entries per subspace (Faiss requires
	// 256; DRIM-ANN supports 2..65536).
	CB int
	// Variant selects the quantizer family: "pq" (default), "opq" or "dpq".
	Variant string
	// TrainSample caps the vectors used for training; 0 = all.
	TrainSample int
	Seed        int64
}

// Build trains an IVF-PQ index over the corpus.
func Build(base Vectors, opt IndexOptions) (*Index, error) {
	return ivf.Build(base, ivf.BuildConfig{
		NList:       opt.NList,
		PQ:          pq.Config{M: opt.M, CB: opt.CB},
		Variant:     opt.Variant,
		TrainSample: opt.TrainSample,
		Seed:        opt.Seed,
	})
}

// Engine is a DRIM-ANN instance: an index deployed across a simulated
// UPMEM DRAM-PIM system with the paper's layout and scheduling
// optimizations.
type Engine = core.Engine

// EngineOptions configures the engine; see DefaultEngineOptions.
type EngineOptions = core.Options

// Result carries search results plus simulation metrics.
type Result = core.Result

// Metrics reports the simulated cost of a search.
type Metrics = core.Metrics

// DefaultEngineOptions enables every optimization the paper proposes.
func DefaultEngineOptions() EngineOptions { return core.DefaultOptions() }

// NewEngine deploys an index onto the simulated PIM system. The profile
// workload (may be empty) drives the offline cluster-heat profiling used by
// the layout optimizer.
func NewEngine(ix *Index, profile Vectors, opts EngineOptions) (*Engine, error) {
	return core.New(ix, profile, opts)
}

// Server is the online serving layer: a concurrent, deadline-aware dynamic
// micro-batcher over one Engine. See the "Online serving" section of the
// package documentation.
type Server = serve.Server

// ServerOptions configures the micro-batching policy (max batch, max wait,
// queue bound, deadline EWMA seed).
type ServerOptions = serve.Options

// ServerStats is a snapshot of a Server's serving metrics (queue depth,
// latency, batch sizes, aggregated simulation metrics).
type ServerStats = serve.Stats

// ServerResponse is one query's answer from a Server.
type ServerResponse = serve.Response

// ErrServerClosed is returned by Server.Search once Close has stopped
// admission.
var ErrServerClosed = serve.ErrClosed

// NewServer starts the online serving layer over eng. The server becomes
// the engine's only driver: do not call eng.SearchBatch concurrently with
// a live server.
func NewServer(eng *Engine, opt ServerOptions) (*Server, error) {
	return serve.New(eng, opt)
}

// LatencyPercentile returns the p-th (0..1) nearest-rank percentile of
// sorted (ascending) latencies, or 0 for an empty slice — the helper load
// generators use to report p50/p95/p99 of Server.Search latencies.
func LatencyPercentile(sorted []time.Duration, p float64) time.Duration {
	return serve.LatencyPercentile(sorted, p)
}

// GroundTruth computes exact top-k neighbors by parallel brute force.
func GroundTruth(base, queries Vectors, k, workers int) [][]int32 {
	return dataset.GroundTruth(base, queries, k, workers)
}

// Recall computes mean recall@k of got against the ground truth.
func Recall(gt, got [][]int32, k int) float64 { return dataset.Recall(gt, got, k) }
