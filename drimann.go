// Package drimann is a Go implementation of DRIM-ANN, the approximate
// nearest neighbor search engine for commodity DRAM processing-in-memory
// systems from "DRIM-ANN: An Approximate Nearest Neighbor Search Engine
// based on Commercial DRAM-PIMs" (SC '25).
//
// The library contains the full system described by the paper:
//
//   - an IVF-PQ index (with OPQ and DPQ variants) over uint8 vector corpora;
//   - a functional UPMEM DRAM-PIM simulator with the paper's cost model
//     (no hardware multiplier, WRAM/MRAM hierarchy, host-transfer limits);
//   - the DRIM-ANN engine: host-side cluster locating, DPU-side residual /
//     LUT / distance / top-k kernels with the multiplier-less SQT
//     conversion, WRAM buffering and lock pruning;
//   - the load-balance optimizer (cluster partition, duplication,
//     allocation) and the greedy runtime scheduler;
//   - the analytic performance model (Equations 1-13) and the Bayesian
//     design space exploration;
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// Execution model: SearchBatch runs as a three-stage pipeline mirroring the
// paper's host/PIM overlap. Stage 1 (cluster locating) processes a whole
// query batch across worker goroutines via the batched LocateBatch API;
// stage 2 schedules the resulting tasks onto DPUs; stage 3 simulates the
// DPU kernels in parallel and merges on the host. Unless
// EngineOptions.NoPipeline is set, stage 1 of batch i+1 overlaps stages 2-3
// of batch i, and all per-launch state (heaps, arenas, task buffers)
// is pooled, so steady-state searching allocates nothing.
//
// The DPU-phase simulation does O(points) arithmetic with near-zero
// constant factor: distances come from unrolled batch ADC kernels that
// evaluate an exact algebraic decomposition instead of materializing
// per-group LUTs, simulated costs accumulate in register-resident tallies
// flushed to the DPU counters once per launch block (the per-op reference
// accountant survives behind EngineOptions.PerOpAccounting), and the SQT16
// replay is memoized per unique (query, cluster) group — all per-DPU
// tables share one geometry, so one replay stands in for up to NumDPUs.
// Results and metrics (every counter, cycle and hit rate) are bit-identical
// across the pipelined, serial, batched-tally and per-op paths; only
// wall-clock speed differs. `drim-bench -bench` records the simulator's own
// wall-clock throughput into a BENCH_core.json trajectory file (with a
// GOMAXPROCS sweep) for cross-PR comparison; see cmd/drim-bench for the
// entry schema.
//
// # Backends
//
// The serving stack is not married to IVF-PQ. Every layer above the engine
// — the micro-batching Server, the sharded Cluster, replication and
// durability — programs against the backend contract in internal/engine: a
// SearchEngine answers batched top-k queries (SearchBatch) and reports its
// shape (K, Dim, MaxBatch); everything else is an optional capability
// discovered by type assertion (probed search, mutation, snapshots,
// replication, memory reporting). Two backends implement the contract:
//
//   - the IVF-PQ engine (NewEngine), DRIM-ANN's own design: streaming
//     cluster scans with PQ-compressed codes, host-side cluster locating,
//     and every optional capability — mutable, snapshottable, shardable;
//   - the graph engine (NewGraphEngine), a Vamana/HNSW-style beam-search
//     traversal over a pruned proximity graph, the competing ANN design
//     the paper positions against. It is search-only (no mutation, no
//     probed search); the serving layers detect this and return
//     ErrUnsupported from the operations it cannot serve.
//
// How to pick: IVF-PQ compresses the corpus ~Dim/M-fold and streams
// contiguous lists, so it fits large corpora in per-DPU MRAM and its
// simulated cost is dominated by sequential scans the paper's buffering
// optimizations amortize; recall is capped by PQ quantization error.
// The graph backend stores full vectors plus adjacency (no compression —
// corpus size is bounded by the 64 MB per-DPU MRAM) and reaches higher
// recall at the same k, but every traversal hop is a dependent, unbuffered
// MRAM access paying full DMA setup latency, the access pattern PIM
// hardware is worst at. Both backends run on the same simulated UPMEM
// system and cost model, so their SimSeconds/QPS are directly comparable —
// that is the point. Cost-model caveats for the comparison: the graph
// simulation replicates the whole graph on every DPU (no sharded
// traversal), assigns each query to one DPU (parallelism across queries,
// not within one), and models no WRAM caching of hot nodes — each is a
// deliberate simplification that favors neither backend's phase
// accounting but understates what a tuned real implementation of either
// could do. `drim-bench -headtohead` records both backends'
// recall-vs-simulated-QPS curves through the serving path into
// BENCH_core.json; the conformance suite in internal/engine pins the
// contract behaviors (determinism, result order, empty batches, serving
// integration) for every backend.
//
// # Online serving
//
// SearchBatch is an offline primitive: one caller, one pre-assembled query
// set. NewServer wraps an engine in the online serving layer
// (internal/serve): a concurrent, deadline-aware dynamic micro-batcher
// that accepts single queries from many goroutines (Server.Search),
// coalesces them into engine launches, and demultiplexes per-query results.
// A single batcher goroutine owns the engine and cycles idle -> collecting
// -> launching: the first query of a batch starts a ServerOptions.MaxWait
// countdown, further queries are absorbed until the batch reaches
// MaxBatch, the countdown expires, or a member's context deadline demands
// an early launch (the batcher tracks an EWMA of launch service times and
// launches once now + estimate reaches the earliest deadline). Cancellation
// is honored while a request is queued; once launched, its result is
// delivered regardless (delivery never blocks the batcher). The arrival
// queue is bounded — a full queue blocks Search, turning overload into
// caller-side backpressure rather than memory growth — and Close drains:
// admitted requests are still answered, later Search calls fail fast with
// ErrServerClosed. Per-query results are bit-identical to a single
// SearchBatch over the same queries regardless of how arrivals split into
// micro-batches (the equivalence suite in internal/serve pins this).
// `drim-bench -serve` runs a closed-loop load generator against the server
// and records p50/p95/p99 latency and achieved QPS into BENCH_core.json.
//
// # Sharded serving
//
// One Engine simulates one PIM system; the rack-scale deployments the paper
// targets spread the corpus over many UPMEM ranks. BuildSharded (or
// NewCluster over a pre-built index) partitions a corpus across S
// independent engines behind one scatter-gather front: all shards share the
// index's quantizers (centroid directory and PQ codebooks, replicated the
// way every rank holds the small directory), while the inverted lists are
// split either point-wise by a deterministic ID hash (near-perfect
// per-query balance) or whole-cluster-wise by balanced k-means bin packing
// (each inverted list wholly on one shard, which skips non-owned probes).
// Each shard runs in a compact local ID space with a monotone local→global
// remap table, so Cluster.SearchBatch — which scatters the query batch and
// merges the per-shard partial top-k — returns IDs and Items bit-identical
// to a single-engine SearchBatch over the unsharded corpus (the equivalence
// suite in internal/cluster pins this for S ∈ {1, 2, 7}, both policies,
// TreeCL on and off). Merged Metrics are the cross-shard parallel view:
// counters sum, wall-like durations are max-over-shards (the fleet is as
// slow as its slowest rank), QPS is recomputed from the merged totals.
//
// How the scatter routes depends on the assignment policy. Under AssignHash
// every shard holds a slice of every inverted list, so a query must
// broadcast to all S shards and each shard runs its own coarse locate (CL)
// — S copies of the same directory scan, the replicated-CL bottleneck.
// AssignKMeans keeps each inverted list whole on one shard, which enables
// the selective-scatter front door: the cluster runs CL exactly once at the
// front (through a Locator shared with shard 0's engine), partitions the
// probe list by a cluster→shard owner map built at deployment, and contacts
// only the shards owning at least one probed cluster; each contacted shard
// skips its CL stage (Engine.SearchBatchProbed) and scans exactly the
// probes routed to it. Results stay bit-identical to broadcast — an
// unowned probe scans nothing anyway — but the CL work drops from S scans
// to one and the per-query fan-out drops below S, which is what turns
// sharding from a latency play into a throughput play. Metrics attribution
// follows the hardware: per-shard metrics carry no CL cost, the merged
// batch metrics charge the front-door CL once into HostSeconds (and into
// SimSeconds only if CL outlasts the slowest shard, mirroring the engine's
// own host/PIM overlap accounting). ClusterStats reports the routing view —
// per-query fan-out mean/max/histogram and front-door CL cost — plus
// replica-aware memory accounting: replicas of a shard share read-only
// state (index, codebooks, layout, locator), so a shard costs
// SharedBytes + R×PerReplicaBytes, not R× everything.
//
// For online traffic, NewClusterServer puts one micro-batching Server in
// front of every shard engine and exposes a single Search front door: the
// query is validated and copied once, routed (front-door CL under
// AssignKMeans, broadcast under AssignHash) to the owning shard servers
// concurrently, and the per-shard responses are merged into the global
// top-k; ClusterResponse.ShardsContacted reports the query's fan-out.
// Per-shard batching policy, backpressure, cancellation and draining Close
// behave exactly as for a single Server; `drim-bench -shards N` runs the
// offline scatter-gather path and records mode:"cluster" entries in
// BENCH_core.json (selective entries carry mean/max fan-out and the
// front-door CL share of wall time, and never compare against broadcast
// entries). The scatter fast-fails: the first shard to fail cancels its
// siblings' in-flight work through a per-query derived context.
//
// Replication masks the tail. ClusterOptions.Replicas > 1 clones each
// shard's engine R ways — replicas are deterministic copies, so any
// replica's answer is its shard's answer, bit-identically — and the cluster
// server runs one micro-batcher per replica. Each query is routed within
// its shard by power-of-two-choices on instantaneous replica load
// (queued + in-launch); if the chosen replica has not answered within a
// hedge delay derived from the sibling replicas' p99 latency estimates
// (clamped by ClusterRouteOptions.HedgeMin/HedgeMax), the request is
// re-issued to a second replica and the first reply wins, the loser
// canceled through the per-query context. A replica that fails outright is
// retried on another immediately, and a consecutive-failure breaker ejects
// it from rotation, letting one probe through per cooldown window until a
// success closes the breaker. A wedged, slow, erroring or killed replica is
// therefore masked — queries keep completing with bit-identical results as
// long as any replica of each shard answers (internal/fault injects exactly
// those failure modes to pin this, and `drim-bench -replicas R -straggler`
// measures hedged vs unhedged tail latency into mode:"replica" entries).
// NewClusterServerRouted exposes the routing policy; NewClusterServer uses
// defaults.
//
// # Live mutability
//
// An index stays mutable after deployment. Engine.Insert assigns each new
// point to its nearest coarse centroid (bit-identically to index build),
// PQ-encodes it with the frozen codebooks, and appends it to that cluster's
// append segment; Engine.Delete tombstones base-list points (filtered by
// the DPU-side top-k accept pass) and removes still-appended points
// outright. Both are visible to the next launch — inserted points are
// findable immediately, including through the selective-scatter path (a
// previously-empty cluster gains a placement slice and an owner-map entry
// the moment a point lands in it), and deleted points are gone. The
// quantizers are frozen: mutations never retrain centroids or codebooks, so
// a heavily mutated index drifts from what a retrain would build; Compact
// folds the append segments and tombstones back into the packed inverted
// lists and re-runs the layout optimizer, after which results are
// bit-identical to a freshly built engine over the same logical corpus
// (the equivalence suites in internal/ivf, internal/core and
// internal/cluster pin this). Replacing a point is Delete then Insert;
// inserting a live ID is an error.
//
// Mutations are not safe concurrently with searches on the same engine —
// the serving layers provide the synchronization. Server.Insert/Delete/
// Compact execute on the batcher goroutine between launches (no hot-path
// locking; queries admitted before the call are answered before or after
// the mutation, never during), and ClusterServer.Insert/Delete/Compact
// quiesce every replica batcher of every shard at a launch boundary, apply
// the mutation through the cluster's global-ID routing (Cluster.Insert
// places each point on the shard a fresh build would pick; Cluster.Compact
// renumbers shard-local IDs back to the dense monotone tables the merge
// relies on), and release the fleet. Memory accounting follows along:
// MemoryFootprint and ClusterStats include live append-segment and
// tombstone bytes, which return to zero at Compact. `drim-bench -mutate`
// measures serving throughput with a live append overlay (1% and 10%
// appended points) against the compacted baseline as mode:"mutate" entries
// in BENCH_core.json.
//
// # Durability and recovery
//
// Everything above lives in memory; the durability layer
// (internal/durable) makes the mutable serving state survive a kill at
// any instant. A DurableStore owns one directory holding a checkpointed
// snapshot (the index with its live mutation overlay, in a checksummed
// section format written via temp-file + fsync + atomic rename), a
// length-framed CRC-per-record write-ahead log of mutations, and a
// manifest binding the {snapshot, WAL} pair so recovery can never mix
// generations. Attach a store to a server through
// ServerOptions.Durability: every Server.Insert/Delete then applies the
// mutation and appends one WAL record for exactly the applied points at
// the batch boundary — acknowledged means WAL-synced under the
// configured SyncPolicy (per record, per batch, or off), and a batch
// that fails part-way logs its applied prefix so the log always
// reproduces acknowledged engine state. Server.Compact checkpoints and
// rotates the log; Server.Checkpoint rotates without compacting.
//
// Recover rebuilds an engine from a store directory: it redeploys over
// the checkpoint's base lists exactly as NewEngine did (checkpoints are
// only written where base lists equal a deploy-time state, and the
// layout optimizer is deterministic), restores the snapshot's overlay
// byte-for-byte, replays the WAL tail through the normal mutation path
// with the frozen quantizers, and rotates to a fresh generation —
// discarding any torn tail. The recovered engine serves bit-identical
// results and reports identical memory stats to the never-crashed
// engine over the same acknowledged mutations; torn or bit-flipped
// records and snapshot sections are detected by checksum, never
// silently served. CreateClusterStore/RecoverCluster extend the same
// contract to a sharded fleet: one store per shard plus an immutable
// assignment sidecar, WAL records carrying global IDs logged to the
// owning shard, and recovery that restores tables, owner maps and
// per-shard engines bit-identically for any S and either assignment
// policy. Crash-point matrices (a simulated filesystem that kills the
// machine at every mutating operation, torn writes included) pin all of
// this at the store, engine, serve and cluster layers, and
// `drim-bench -recovery` measures WAL overhead and recovery wall time
// into mode:"recovery" entries.
//
// Quick start:
//
//	corpus := drimann.SIFT(100000, 1000, 1) // synthetic SIFT-shaped data
//	ix, _ := drimann.Build(corpus.Base, drimann.IndexOptions{
//		NList: 1024, M: 16, CB: 256,
//	})
//	eng, _ := drimann.NewEngine(ix, corpus.Queries, drimann.DefaultEngineOptions())
//	res, _ := eng.SearchBatch(corpus.Queries)
//	fmt.Println(res.Metrics.QPS, res.IDs[0])
package drimann

import (
	"time"

	"drimann/internal/cluster"
	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/durable"
	"drimann/internal/engine"
	"drimann/internal/graph"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/serve"
)

// Vectors is a flat corpus of N uint8 vectors of dimension D.
type Vectors = dataset.U8Set

// FloatVectors is a flat float32 corpus (quantize with Quantize before
// indexing).
type FloatVectors = dataset.F32Set

// Synth is a generated corpus with its query workload.
type Synth = dataset.Synth

// SynthConfig controls synthetic corpus generation.
type SynthConfig = dataset.SynthConfig

// Generate builds a synthetic clustered corpus (see SynthConfig).
func Generate(cfg SynthConfig) *Synth { return dataset.Generate(cfg) }

// SIFT generates a synthetic corpus with SIFT's shape (128-dim uint8).
func SIFT(n, queries int, seed int64) *Synth { return dataset.SIFT(n, queries, seed) }

// DEEP generates a synthetic corpus with DEEP's shape (96-dim).
func DEEP(n, queries int, seed int64) *Synth { return dataset.DEEP(n, queries, seed) }

// SPACEV generates a synthetic corpus with SPACEV's shape (100-dim).
func SPACEV(n, queries int, seed int64) *Synth { return dataset.SPACEV(n, queries, seed) }

// T2I generates a synthetic corpus with T2I's shape (200-dim).
func T2I(n, queries int, seed int64) *Synth { return dataset.T2I(n, queries, seed) }

// Index is a built IVF-PQ index.
type Index = ivf.Index

// IndexOptions configures index construction.
type IndexOptions struct {
	// NList is the number of coarse clusters (the paper's nlist).
	NList int
	// M is the number of PQ subvectors; must divide the dimension.
	M int
	// CB is the number of codebook entries per subspace (Faiss requires
	// 256; DRIM-ANN supports 2..65536).
	CB int
	// Variant selects the quantizer family: "pq" (default), "opq" or "dpq".
	Variant string
	// TrainSample caps the vectors used for training; 0 = all.
	TrainSample int
	Seed        int64
}

// Build trains an IVF-PQ index over the corpus.
func Build(base Vectors, opt IndexOptions) (*Index, error) {
	return ivf.Build(base, ivf.BuildConfig{
		NList:       opt.NList,
		PQ:          pq.Config{M: opt.M, CB: opt.CB},
		Variant:     opt.Variant,
		TrainSample: opt.TrainSample,
		Seed:        opt.Seed,
	})
}

// SearchEngine is the backend contract every serving layer programs
// against: batched top-k search plus the engine's shape (K, Dim,
// MaxBatch). *Engine and *GraphEngine both satisfy it; see the "Backends"
// section of the package documentation.
type SearchEngine = engine.Engine

// EngineMetrics re-exports the backend-shared metrics type (identical to
// Metrics; both alias internal/engine's).
type EngineMetrics = engine.Metrics

// Engine is a DRIM-ANN instance: an index deployed across a simulated
// UPMEM DRAM-PIM system with the paper's layout and scheduling
// optimizations.
type Engine = core.Engine

// GraphEngine is the beam-search graph-traversal backend: a Vamana-style
// pruned proximity graph over full uint8 vectors, searched by greedy beam
// traversal on the same simulated PIM system. Search-only: it implements
// SearchEngine (plus replication and memory reporting) but none of the
// mutation or probed-search capabilities.
type GraphEngine = graph.Engine

// GraphOptions configures the graph backend (degree bound, build/search
// beam widths, pruning slack, simulated system size).
type GraphOptions = graph.Options

// DefaultGraphOptions returns the graph backend's default configuration.
func DefaultGraphOptions() GraphOptions { return graph.DefaultOptions() }

// NewGraphEngine builds the proximity graph over the corpus and deploys it
// onto the simulated PIM system. The build is deterministic; the corpus
// (vectors plus adjacency) must fit per-DPU MRAM.
func NewGraphEngine(base Vectors, opts GraphOptions) (*GraphEngine, error) {
	return graph.New(base, opts)
}

// EngineOptions configures the engine; see DefaultEngineOptions.
type EngineOptions = core.Options

// Result carries search results plus simulation metrics.
type Result = core.Result

// Locator is the coarse-locate stage as a standalone component: the
// centroid directory (flat or TreeCL) with its cost model. Engine.Locator
// exposes an engine's locator so a front door can resolve probe lists once
// and feed them to Engine.SearchBatchProbed, skipping per-engine CL.
type Locator = core.Locator

// ProbeSet is a packed per-query probe-list batch (CSR layout) as produced
// by Locator.Probes and consumed by Engine.SearchBatchProbed.
type ProbeSet = core.ProbeSet

// Metrics reports the simulated cost of a search.
type Metrics = core.Metrics

// DefaultEngineOptions enables every optimization the paper proposes.
func DefaultEngineOptions() EngineOptions { return core.DefaultOptions() }

// NewEngine deploys an index onto the simulated PIM system. The profile
// workload (may be empty) drives the offline cluster-heat profiling used by
// the layout optimizer.
func NewEngine(ix *Index, profile Vectors, opts EngineOptions) (*Engine, error) {
	return core.New(ix, profile, opts)
}

// Server is the online serving layer: a concurrent, deadline-aware dynamic
// micro-batcher over one Engine. See the "Online serving" section of the
// package documentation.
type Server = serve.Server

// ServerOptions configures the micro-batching policy (max batch, max wait,
// queue bound, deadline EWMA seed).
type ServerOptions = serve.Options

// ServerStats is a snapshot of a Server's serving metrics (queue depth,
// latency, batch sizes, aggregated simulation metrics).
type ServerStats = serve.Stats

// ServerResponse is one query's answer from a Server.
type ServerResponse = serve.Response

// ErrServerClosed is returned by Server.Search once Close has stopped
// admission.
var ErrServerClosed = serve.ErrClosed

// NewServer starts the online serving layer over any backend satisfying
// the SearchEngine contract. The server becomes the engine's only driver:
// do not call eng.SearchBatch concurrently with a live server. Operations
// the backend lacks the capability for (Insert/Delete/Compact on a
// search-only backend) return serve.ErrUnsupported.
func NewServer(eng SearchEngine, opt ServerOptions) (*Server, error) {
	return serve.New(eng, opt)
}

// LatencyPercentile returns the p-th nearest-rank percentile of latencies —
// the helper load generators use to report p50/p95/p99 of Server.Search
// latencies. The contract is nearest-rank over a pre-sorted sample:
//
//   - sorted MUST already be in ascending order; the function indexes the
//     slice as-is and returns whatever sits at the nearest-rank position,
//     so unsorted input yields a well-defined but meaningless value (no
//     error is raised — sorting here would hide the caller's bug and cost
//     O(n log n) per call).
//   - p is a fraction in (0, 1]: the returned value is element
//     ceil(p*n)-1, so p=1 is the maximum and small samples never
//     under-report the tail.
//   - p <= 0 clamps to the minimum (element 0) rather than erroring, and
//     p > 1 clamps to the maximum; an empty slice returns 0.
func LatencyPercentile(sorted []time.Duration, p float64) time.Duration {
	return serve.LatencyPercentile(sorted, p)
}

// DurableStore is one engine's durability directory: a checksummed
// checkpoint snapshot, a CRC-per-record mutation WAL, and the manifest
// binding them. See the "Durability and recovery" section of the package
// documentation.
type DurableStore = durable.Store

// DurableOptions locates a store (directory, fsync policy, filesystem
// seam — leave FS nil for the real OS).
type DurableOptions = durable.Options

// SyncPolicy selects when the mutation WAL is fsynced.
type SyncPolicy = durable.SyncPolicy

// WAL fsync policies: SyncEveryBatch (the default) syncs once per
// mutation batch, SyncEveryRecord after every record, SyncNever leaves
// durability to the OS.
const (
	SyncEveryBatch  = durable.SyncEveryBatch
	SyncEveryRecord = durable.SyncEveryRecord
	SyncNever       = durable.SyncNever
)

// CreateStore initializes a durability directory for eng, checkpointing
// its current state as the first snapshot. Attach the returned store via
// ServerOptions.Durability to make server mutations durable, or drive
// it directly (Append/BatchEnd/Checkpoint) as the serving layer does.
func CreateStore(eng *Engine, opt DurableOptions) (*DurableStore, error) {
	return eng.CreateStore(opt)
}

// Recover rebuilds an engine from a durability directory: redeploy the
// checkpoint snapshot, replay the WAL tail through the normal mutation
// path, rotate to a fresh generation. The recovered engine serves
// bit-identical results to the never-crashed engine over the same
// acknowledged mutations. The profile workload and opts must match the
// original deployment's for the layout to reproduce.
func Recover(opt DurableOptions, profile Vectors, opts EngineOptions) (*Engine, *DurableStore, error) {
	return core.Recover(opt, profile, opts)
}

// Cluster is the scatter-gather sharding layer: a corpus partitioned across
// S independent engines behind one batch front. See the "Sharded serving"
// section of the package documentation.
type Cluster = cluster.Cluster

// ClusterOptions configures sharding (shard count, assignment policy,
// per-shard engine options).
type ClusterOptions = cluster.Options

// ClusterShard is one partition of a sharded deployment: its engine plus
// the monotone local→global ID table.
type ClusterShard = cluster.Shard

// ShardAssignment selects the partitioning policy.
type ShardAssignment = cluster.Assignment

// Shard-assignment policies: AssignHash spreads points across shards by a
// deterministic ID hash; AssignKMeans packs whole coarse clusters onto
// shards balanced by size.
const (
	AssignHash   = cluster.AssignHash
	AssignKMeans = cluster.AssignKMeans
)

// NewCluster partitions a pre-built index across opt.Shards engines. The
// profile workload (may be empty) drives each shard's layout heat
// profiling, as in NewEngine.
func NewCluster(ix *Index, profile Vectors, opt ClusterOptions) (*Cluster, error) {
	return cluster.New(ix, profile, opt)
}

// BuildSharded trains an IVF-PQ index over the corpus and deploys it as a
// sharded scatter-gather fleet: Build followed by NewCluster. Merged
// Cluster.SearchBatch results are bit-identical to a single-engine
// SearchBatch over the same index.
func BuildSharded(base Vectors, profile Vectors, iopt IndexOptions, copt ClusterOptions) (*Cluster, error) {
	ix, err := Build(base, iopt)
	if err != nil {
		return nil, err
	}
	return cluster.New(ix, profile, copt)
}

// ClusterServer is the sharded online serving layer: one micro-batching
// Server per shard behind a single scatter-gather Search front door.
type ClusterServer = cluster.Server

// ClusterServerStats snapshots a ClusterServer's front-door ledger, the
// replication machinery's counters (hedges, hedge wins, failovers, breaker
// ejections), the selective-scatter routing view, and the per-shard,
// per-replica serving stats with their aggregate.
type ClusterServerStats = cluster.ServerStats

// ClusterStats snapshots a Cluster's deployment view: per-shard
// replica-aware memory accounting plus the selective-scatter routing stats
// (all zeros under AssignHash, which broadcasts).
type ClusterStats = cluster.Stats

// ClusterRouteStats is the selective-scatter routing accumulator: per-query
// fan-out mean/max/histogram and the front-door coarse-locate cost. The
// offline Cluster.SearchBatch and the online ClusterServer drive the same
// front door and share this accumulator.
type ClusterRouteStats = cluster.RouteStats

// ClusterShardMemStats is one shard's replica-aware memory accounting:
// bytes shared by all its replicas plus each replica's private bytes.
type ClusterShardMemStats = cluster.ShardMemStats

// ClusterShardStats groups one shard's per-replica serving ledgers.
type ClusterShardStats = cluster.ShardStats

// ClusterReplicaStats is one replica's serving ledger plus the routing
// state the front door keeps about it (load, p99 estimate, breaker state).
type ClusterReplicaStats = cluster.ReplicaStats

// ClusterResponse is one query's merged answer from a ClusterServer.
type ClusterResponse = cluster.Response

// ClusterRouteOptions configures replica routing on a ClusterServer:
// hedging policy, breaker thresholds, and the per-replica wrap hook fault
// injection uses. Zero values select defaults.
type ClusterRouteOptions = cluster.RouteOptions

// ClusterReplica is the contract one replica of a shard serves behind; a
// *Server satisfies it, as do the fault-injection wrappers in
// internal/fault.
type ClusterReplica = cluster.Replica

// NewClusterServer starts one serving layer per shard replica (all with the
// same options) behind a scatter-gather front door with default routing.
// The fleet becomes the engines' only driver.
func NewClusterServer(cl *Cluster, opt ServerOptions) (*ClusterServer, error) {
	return cluster.NewServer(cl, opt)
}

// NewClusterServerRouted is NewClusterServer with explicit replica-routing
// options (hedging policy, breaker thresholds, the replica wrap hook).
func NewClusterServerRouted(cl *Cluster, opt ServerOptions, route ClusterRouteOptions) (*ClusterServer, error) {
	return cluster.NewServerRouted(cl, opt, route)
}

// FleetStore is a sharded deployment's durability directory: one
// DurableStore per shard plus the immutable shard-assignment sidecar.
type FleetStore = cluster.FleetStore

// CreateClusterStore initializes a fleet durability directory for cl and
// attaches it: every subsequent Cluster.Insert/Delete is WAL-logged on
// the owning shard, and Compact checkpoints and rotates every shard's
// log. One directory, one fleet.
func CreateClusterStore(cl *Cluster, opt DurableOptions) (*FleetStore, error) {
	return cluster.CreateFleetStore(cl, opt)
}

// RecoverCluster rebuilds a sharded fleet from a fleet durability
// directory, replaying each shard's WAL tail independently. The
// recovered fleet serves bit-identical merged results — and identical
// tables, owner maps, and memory stats — to the never-crashed fleet
// over the same acknowledged mutations. copt must match the original
// deployment (shard count, assignment policy, engine options); the
// profile workload drives per-shard layout heat as in NewCluster.
func RecoverCluster(opt DurableOptions, profile Vectors, copt ClusterOptions) (*Cluster, *FleetStore, error) {
	return cluster.RecoverCluster(opt, profile, copt)
}

// GroundTruth computes exact top-k neighbors by parallel brute force.
func GroundTruth(base, queries Vectors, k, workers int) [][]int32 {
	return dataset.GroundTruth(base, queries, k, workers)
}

// Recall computes mean recall@k of got against the ground truth.
func Recall(gt, got [][]int32, k int) float64 { return dataset.Recall(gt, got, k) }
