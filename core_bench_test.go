package drimann_test

// Wall-clock benchmarks of the simulator itself (not the simulated time):
// the ISSUE-1 acceptance suite. BenchmarkSearchBatch measures end-to-end
// engine throughput on a 100k x 128d corpus with 1k queries and default
// options; BenchmarkLocateBatch isolates the host-side cluster locating
// stage. `go test -bench 'SearchBatch|LocateBatch' -run xxx .` reproduces
// the BENCH_core.json numbers recorded by `drim-bench -bench`.

import (
	"sync"
	"testing"

	"drimann"
	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/topk"
)

var (
	wallOnce sync.Once
	wallData *dataset.Synth
	wallIx   *ivf.Index
)

// wallFixture builds the acceptance-scale corpus and index once: 100k SIFT
// vectors (128d), 1k queries. Training is capped so fixture setup stays in
// seconds; search cost is unaffected.
func wallFixture(b *testing.B) (*ivf.Index, *dataset.Synth) {
	b.Helper()
	wallOnce.Do(func() {
		wallData = dataset.SIFT(100000, 1000, 1)
		ix, err := ivf.Build(wallData.Base, ivf.BuildConfig{
			NList:       1024,
			PQ:          pq.Config{M: 16, CB: 256},
			KMeansIters: 4,
			TrainSample: 8000,
			Seed:        1,
		})
		if err != nil {
			panic(err)
		}
		wallIx = ix
	})
	return wallIx, wallData
}

// BenchmarkSearchBatch is the ISSUE-1 headline number: wall-clock seconds
// for one full SearchBatch over 1k queries at default engine options.
func BenchmarkSearchBatch(b *testing.B) {
	ix, s := wallFixture(b)
	eng, err := drimann.NewEngine(ix, drimann.Vectors{}, drimann.DefaultEngineOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.SearchBatch(s.Queries)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.IDs) != s.Queries.N {
			b.Fatalf("got %d results, want %d", len(res.IDs), s.Queries.N)
		}
	}
	b.ReportMetric(float64(s.Queries.N)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkSearchBatchSerial runs the same engine with pipelining and
// worker parallelism off — the serial reference mode whose results and
// metrics the pipelined path must reproduce exactly. (The pre-PR engine's
// wall-clock numbers, against which the ISSUE-1 4x acceptance criterion is
// measured, are recorded as the first entry of BENCH_core.json.)
func BenchmarkSearchBatchSerial(b *testing.B) {
	ix, s := wallFixture(b)
	opts := drimann.DefaultEngineOptions()
	opts.Workers = 1
	opts.NoPipeline = true
	eng, err := drimann.NewEngine(ix, drimann.Vectors{}, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchBatch(s.Queries); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Queries.N)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkLocateBatch measures the batched host-side CL stage on its own.
func BenchmarkLocateBatch(b *testing.B) {
	ix, s := wallFixture(b)
	nprobe := 32
	out := make([]topk.Item[uint32], s.Queries.N*nprobe)
	counts := make([]int, s.Queries.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.LocateBatch(s.Queries, 0, s.Queries.N, nprobe, 0, out, counts)
	}
	b.ReportMetric(float64(s.Queries.N)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
