module drimann

go 1.24
